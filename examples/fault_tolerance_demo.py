"""Fault tolerance walkthrough: crashes, recovery, blocking, partitions.

Three deterministic scenarios built on the fault/recovery injector:

1. **Participant crash** — a replica holder dies mid-session and recovers;
   the WAL replays committed writes and the quorum protocol keeps the data
   available meanwhile.
2. **Coordinator crash after votes** — the classic 2PC blocking window:
   prepared participants are orphans until the coordinator returns
   (presumed abort); rerun with 3PC, the termination protocol settles them
   without the coordinator.
3. **Network partition** — a minority partition cannot assemble write
   quorums; after healing, the system proceeds.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.core import RainbowConfig, RainbowInstance
from repro.txn import Operation, Transaction
from repro.workload import WorkloadSpec


def scenario_participant_crash() -> None:
    print("--- 1. participant crash & WAL recovery " + "-" * 30)
    config = RainbowConfig.quick(n_sites=4, n_items=16, replication_degree=3)
    config.faults.schedule.crashes.append(("site3", 30.0))
    config.faults.schedule.recoveries.append(("site3", 150.0))
    # Failure-tuned timeouts: stalls on the dead site resolve quickly.
    config.protocols.op_timeout = 15.0
    config.protocols.vote_timeout = 10.0
    config.protocols.ack_timeout = 8.0
    config.protocols.ccp_options = {"wait_timeout": 10.0}
    config.uncertainty_timeout = 25.0
    config.decision_retry = 10.0
    config.gc_interval = 20.0
    config.gc_timeout = 40.0
    instance = RainbowInstance(config)
    spec = WorkloadSpec(
        n_transactions=60, arrival="poisson", arrival_rate=0.4,
        min_ops=2, max_ops=4, read_fraction=0.4,
    )
    result = instance.run_workload(spec)
    site3 = instance.sites["site3"]
    print(
        f"commit rate {result.statistics.commit_rate:.2f} with site3 down "
        f"t=30..150; site3 recovered with {site3.store.writes_applied} writes "
        f"on disk, {len(site3.wal)} WAL records, serializable={result.serializable}"
    )


def scenario_coordinator_crash(acp: str) -> None:
    print(f"--- 2. coordinator crash after votes ({acp}) " + "-" * 26)
    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3)
    config.protocols.acp = acp
    config.uncertainty_timeout = 20.0
    config.decision_retry = 10.0
    instance = RainbowInstance(config)
    instance.coordinator_config.failpoint = "after_votes"
    instance.coordinator_config.failpoint_arms = 1
    instance.start()

    txn = Transaction(
        ops=[Operation.write("x1", 1), Operation.write("x2", 2)], home_site="site1"
    )
    process = instance.submit(txn)
    instance.sim.run(until=process)
    crash_at = instance.sim.now
    instance.sim.run(until=crash_at + 120)
    orphans = sum(site.in_doubt_count() for site in instance.sites.values())
    print(f"t={instance.sim.now:.0f}: home crashed at t={crash_at:.0f}; "
          f"orphans while coordinator is down: {orphans}")
    instance.injector.recover_now("site1")
    instance.sim.run(until=instance.sim.now + 120)
    orphans = sum(site.in_doubt_count() for site in instance.sites.values())
    print(f"after coordinator recovery: orphans={orphans} "
          f"(decision: presumed abort)" if acp == "2PC"
          else f"after recovery: orphans={orphans}")


def scenario_partition() -> None:
    print("--- 3. network partition & heal " + "-" * 38)
    config = RainbowConfig.quick(
        n_sites=4, n_items=16, replication_degree=3, sites_per_host=1
    )
    # Minority {host4} cut off from the majority between t=20 and t=120.
    config.faults.schedule.partitions.append(
        (20.0, [["host1", "host2", "host3"], ["host4"]])
    )
    config.faults.schedule.heals.append(120.0)
    instance = RainbowInstance(config)
    spec = WorkloadSpec(
        n_transactions=60, arrival="poisson", arrival_rate=0.4,
        min_ops=2, max_ops=4, read_fraction=0.5, home_policy="round_robin",
    )
    result = instance.run_workload(spec)
    majority_homes = sum(
        1 for rec in instance.monitor.records
        if rec.status == "COMMITTED" and rec.home_site != "site4"
    )
    minority_homes = sum(
        1 for rec in instance.monitor.records
        if rec.status == "COMMITTED" and rec.home_site == "site4"
    )
    print(
        f"commit rate {result.statistics.commit_rate:.2f}; commits from "
        f"majority homes {majority_homes}, from the isolated site4 "
        f"{minority_homes}; serializable={result.serializable}"
    )


def main() -> None:
    scenario_participant_crash()
    print()
    scenario_coordinator_crash("2PC")
    print()
    scenario_coordinator_crash("3PC")
    print()
    scenario_partition()


if __name__ == "__main__":
    main()
