"""Quickstart: configure Rainbow, run a workload, read the output panel.

Builds the default classroom configuration (4 sites, replicated items,
QC + 2PL + 2PC), runs a small simulated workload, and prints the paper's
Figure-5 "Tx Processing Output" panel plus the serializability verdict.

Run:  python examples/quickstart.py
"""

from repro.core import RainbowConfig, RainbowInstance
from repro.gui import render_replication_panel, render_session_panel
from repro.workload import WorkloadSpec


def main() -> None:
    # 1. Configure: sites, protocols, database items, replication scheme.
    config = RainbowConfig.quick(n_sites=4, n_items=32, replication_degree=3)
    config.protocols.rcp = "QC"   # Read quorums / write quorums (the default)
    config.protocols.ccp = "2PL"  # Strict two-phase locking
    config.protocols.acp = "2PC"  # Two-phase commit
    config.sample_interval = 20.0

    instance = RainbowInstance(config)
    print(render_replication_panel(instance.catalog))

    # 2. Submit a simulated workload.
    spec = WorkloadSpec(
        n_transactions=100,
        arrival="poisson",
        arrival_rate=0.5,
        min_ops=3,
        max_ops=6,
        read_fraction=0.7,
    )
    result = instance.run_workload(spec)

    # 3. Observe the execution (the Tx Processing menu).
    print()
    print(render_session_panel(result.statistics, instance.monitor.records[-5:]))
    print()
    print(f"Committed global history one-copy serializable: {result.serializable}")
    ts = instance.monitor.series
    if ts["t"]:
        print(f"Time series samples: {len(ts['t'])} "
              f"(final cumulative commits {ts['committed'][-1]})")


if __name__ == "__main__":
    main()
