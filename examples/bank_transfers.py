"""Bank transfers: conservation of money under each concurrency protocol.

A classroom-favourite workload on top of Rainbow's increment operations:
accounts are replicated counters, a transfer is
``increment(from, -amount); increment(to, +amount)`` in one transaction.
The invariant every correct CCP must preserve: **the total balance of all
accounts equals the initial total** no matter how transfers interleave,
because each committed transaction is balance-neutral and aborted ones
leave no trace.

The demo runs the same randomized transfer mix under 2PL, TSO, MVTO and
OCC (conservation holds, histories serializable), then under the broken
classroom NOCC protocol — where money disappears or is conjured, and the
checker flags the violations.

Run:  python examples/bank_transfers.py
"""

import random

import repro.classroom  # noqa: F401 - registers NOCC
from repro.core import RainbowConfig, RainbowInstance
from repro.txn import Operation, Transaction

N_ACCOUNTS = 6
INITIAL_BALANCE = 100
N_TRANSFERS = 24


def build_bank(ccp: str) -> RainbowInstance:
    config = RainbowConfig.quick(
        n_sites=4,
        n_items=N_ACCOUNTS,
        replication_degree=3,
        seed=17,
        initial_value=INITIAL_BALANCE,  # every account opens funded
    )
    config.protocols.ccp = ccp
    config.settle_time = 80.0
    instance = RainbowInstance(config)
    instance.start()
    return instance


def total_balance(instance: RainbowInstance) -> float:
    total = 0
    for item in instance.catalog.item_names():
        copies = [
            instance.sites[name].store.read(item)
            for name in instance.catalog.sites_holding(item)
        ]
        value, _version = max(copies, key=lambda pair: pair[1])
        total += value
    return total


def run_transfers(instance: RainbowInstance) -> tuple[int, int]:
    rng = random.Random(99)
    accounts = instance.catalog.item_names()
    txns = []
    processes = []
    for index in range(N_TRANSFERS):
        src, dst = rng.sample(accounts, 2)
        amount = rng.randint(1, 20)
        txn = Transaction(
            ops=[Operation.increment(src, -amount), Operation.increment(dst, amount)],
            home_site=f"site{(index % 4) + 1}",
        )
        txns.append(txn)
        processes.append(instance.submit(txn))
        instance.sim.run(until=instance.sim.now + rng.uniform(2, 6))
    instance.sim.run(until=instance.sim.all_of(processes))
    instance.sim.run(until=instance.sim.now + 80)
    committed = sum(1 for txn in txns if txn.committed)
    return committed, len(txns)


def main() -> None:
    expected_total = N_ACCOUNTS * INITIAL_BALANCE
    print(f"{N_ACCOUNTS} accounts x {INITIAL_BALANCE} = total {expected_total}\n")
    for ccp in ("2PL", "TSO", "MVTO", "OCC", "NOCC"):
        instance = build_bank(ccp)
        committed, total = run_transfers(instance)
        balance = total_balance(instance)
        conserved = balance == expected_total
        ok, _witness = instance.monitor.history.check_serializable()
        collisions = instance.monitor.history.version_collisions()
        verdict = "conserved" if conserved else f"VIOLATED (total={balance})"
        print(
            f"{ccp:>5s}: {committed:2d}/{total} transfers committed | "
            f"money {verdict} | serializable={ok} | "
            f"version collisions={len(collisions)}"
        )
    print(
        "\nEvery real protocol conserves the total; NOCC (no concurrency "
        "control) loses or conjures money — which is the whole point of "
        "the lab."
    )


if __name__ == "__main__":
    main()
