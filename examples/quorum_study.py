"""Experimental research with Rainbow: the quorum-consensus study.

§3 of the paper: "[Rainbow] has been successfully used in studying the
quorum consensus behavior and message traffic in quorum-based systems
[3]."  This example reruns that study on the reproduction:

* message traffic per transaction, ROWA vs QC, sweeping the replication
  degree at two read/write mixes (the crossover analysis);
* commit rate under increasingly frequent site failures (the availability
  argument for quorums).

Run:  python examples/quorum_study.py          (full sweep, ~30 s)
      python examples/quorum_study.py --quick  (reduced sweep)
"""

import sys

from repro.experiments import availability, quorum_traffic


def main() -> None:
    quick = "--quick" in sys.argv

    traffic = quorum_traffic.run(
        degrees=(1, 3, 5) if quick else (1, 2, 3, 5, 7),
        read_fractions=(0.2, 0.8),
        n_txns=60 if quick else 150,
    )
    print(traffic.to_text())

    print()
    avail = availability.run(
        mttfs=(None, 300.0) if quick else (None, 600.0, 300.0, 150.0),
        n_txns=60 if quick else 120,
    )
    print(avail.to_text())

    # The headline observations, extracted from the tables:
    rows = traffic.rows
    write_heavy = [r for r in rows if r["read_fraction"] == 0.2]
    top_degree = max(r["degree"] for r in write_heavy)
    rowa = next(
        r["msgs_per_txn"]
        for r in write_heavy
        if r["rcp"] == "ROWA" and r["degree"] == top_degree
    )
    qc = next(
        r["msgs_per_txn"]
        for r in write_heavy
        if r["rcp"] == "QC" and r["degree"] == top_degree
    )
    print()
    print(
        f"Write-heavy at degree {top_degree}: ROWA costs {rowa:.1f} msgs/txn, "
        f"QC costs {qc:.1f} ({rowa / qc:.2f}x advantage to QC)."
    )

    # Visual rendering of the results (the GUI's Display menu).
    from repro.gui.charts import bar_chart

    print()
    labels, values = [], []
    for row in write_heavy:
        labels.append(f"{row['rcp']} d={row['degree']}")
        values.append(row["msgs_per_txn"])
    print(bar_chart(labels, values,
                    title="Messages per transaction, write-heavy (20% reads)"))


if __name__ == "__main__":
    main()
