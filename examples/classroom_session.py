"""A classroom session, exactly as §4/§5 of the paper stage it.

The TA (administrator) sets up the Rainbow domain and the name server; a
student then downloads the GUI applet from the Rainbow home URL, logs in,
inspects the configuration, composes manual transactions, injects a site
failure and a recovery, and reads the statistics — all through the web
middle tier, never talking to any host but the Rainbow home.

The second half is the term-project exercise: the same scenario re-run
with 2PC swapped for 3PC, showing orphan transactions disappearing.

Run:  python examples/classroom_session.py
"""

from repro.core import RainbowConfig, RainbowInstance
from repro.gui import (
    GuiApplet,
    render_login_panel,
    render_manual_workload_panel,
    render_physical_architecture,
)
from repro.txn import Operation, Transaction
from repro.web import RainbowWebTier


def build_domain(acp: str) -> tuple[RainbowInstance, RainbowWebTier]:
    """The TA's tasks: install Rainbow, start runners, configure NS."""
    config = RainbowConfig.quick(
        n_sites=4, n_items=8, replication_degree=3, sites_per_host=2
    )
    config.protocols.acp = acp
    config.uncertainty_timeout = 25.0
    config.decision_retry = 10.0
    instance = RainbowInstance(config)
    instance.start()
    tier = RainbowWebTier(instance)  # ServletRunner on every domain host
    return instance, tier


def student_session(instance: RainbowInstance, tier: RainbowWebTier, acp: str) -> None:
    applet = GuiApplet(tier)
    print(f"Student opens {applet.url}")
    applet.download_page()
    role = applet.login("student", "student")
    print(render_login_panel(tier.home_host, applet.url, logged_in_as=role))

    sites = [info["name"] for info in applet.lookup_sites()]
    print(f"\nRegistered sites: {sites}")

    # Compose two conflicting transactions in the manual panel.
    t1 = Transaction(
        ops=[Operation.read("x1"), Operation.write("x2", 10)], home_site="site1"
    )
    t2 = Transaction(
        ops=[Operation.read("x2"), Operation.write("x1", 20)], home_site="site3"
    )
    print()
    print(render_manual_workload_panel([t1, t2]))
    out1 = applet.submit_transaction(t1)
    out2 = applet.submit_transaction(t2)
    print(
        render_manual_workload_panel(
            [t1, t2], {t1.txn_id: out1["status"], t2.txn_id: out2["status"]}
        )
    )
    print(f"T{t1.txn_id} read {out1['reads']}; T{t2.txn_id} read {out2['reads']}")

    # Inject a failure mid-lecture, then a recovery.
    print(f"\nInjecting failure: crash site2 -> {applet.crash_site('site2')}")
    t3 = Transaction(ops=[Operation.write("x1", 30)], home_site="site1")
    out3 = applet.submit_transaction(t3)
    print(f"T{t3.txn_id} while site2 is down ({acp}): {out3['status']}")
    print(f"Recovering site2 -> {applet.recover_site('site2')}")
    instance.sim.run(until=instance.sim.now + 100)

    stats = applet.statistics()
    print(
        f"\nSession stats: committed={stats['committed']} "
        f"aborted={stats['aborted']} (by cause {stats['aborts_by_cause']}) "
        f"orphan events={stats['orphan_events']}"
    )
    from repro.gui import render_sites_panel, render_traffic_panel

    print()
    print(render_sites_panel(instance.sites.values()))
    print()
    print(render_traffic_panel(instance.network.stats, top=6))
    applet.logout()


def main() -> None:
    for acp in ("2PC", "3PC"):
        print("=" * 72)
        print(f"Classroom session with ACP = {acp}")
        print("=" * 72)
        instance, tier = build_domain(acp)
        print(
            render_physical_architecture(
                tier.placement_table(),
                sites_by_host={
                    host: sorted(
                        s.name for s in instance.sites.values() if s.host == host
                    )
                    for host in sorted({s.host for s in instance.sites.values()})
                },
                ns_host=instance.nameserver.host,
            )
        )
        student_session(instance, tier, acp)
        print()


if __name__ == "__main__":
    main()
